//===- bench_audit.cpp - Shared multi-policy audit vs. N separate runs ----===//
//
// Gates the tentpole claim of the multi-policy audit engine: auditing all
// registered policies in ONE shared pass (one parse, one CFG, one
// taint/slice pre-pass, one symbolic-execution walk — auditSource) must
// be measurably cheaper than N independent per-policy analyzeSource
// sweeps, in BOTH wall time and decide.* cache misses, while reporting
// verdicts identical to the separate runs on every file and policy.
//
// The corpus is the Figure 11 suites (the paper's SQL-only evaluation
// set, where the shared pass must be *bit-identical* to a standalone run,
// exploit witnesses included) plus the hand-written multi-class showcase
// suite (miniphp/Corpus.h auditShowcase), whose files feed several sink
// classes from the same filtered inputs so the per-policy constraint
// systems share sub-structure the decision cache can exploit.
//
// Cache-miss accounting mirrors deployment: the "separate" mode clears
// the decision cache before EACH per-policy sweep — four independent
// audits are four processes, each starting cold — while the shared mode
// clears once. On multi-class files the shared mode then provably decides
// common sub-queries (condition languages, shared input constraints)
// once where the separate mode re-decides them per policy.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "automata/Decide.h"
#include "miniphp/Analysis.h"
#include "miniphp/Corpus.h"
#include "miniphp/Policy.h"
#include "support/Timer.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace dprle;
using namespace dprle::miniphp;

namespace {

struct BenchFile {
  std::string Label;
  std::string Source;
  bool Fig11 = false; ///< SQL-only corpus: gate exploit witnesses too.
  AnalysisOptions Opts;
};

std::vector<BenchFile> corpus() {
  std::vector<BenchFile> Files;
  for (const Suite &S : figure11Suites()) {
    for (const SuiteFile &F : S.Files) {
      BenchFile B;
      B.Label = S.Name + "/" + F.Name;
      B.Source = F.Source;
      B.Fig11 = true;
      B.Opts.Solver.CanonicalizeConstants = F.Name == "secure.php";
      Files.push_back(std::move(B));
    }
  }
  Suite Showcase = auditShowcase();
  for (const SuiteFile &F : Showcase.Files) {
    BenchFile B;
    B.Label = Showcase.Name + "/" + F.Name;
    B.Source = F.Source;
    Files.push_back(std::move(B));
  }
  return Files;
}

} // namespace

int main() {
  benchjson::BenchReport Report("audit");
  const PolicyRegistry &Registry = PolicyRegistry::global();
  std::vector<const Policy *> Policies;
  for (const Policy &P : Registry.policies())
    Policies.push_back(&P);
  std::vector<BenchFile> Files = corpus();

  std::printf("Multi-policy audit: one shared pass over %zu files x %zu "
              "policies vs. %zu separate per-policy sweeps.\n\n",
              Files.size(), Policies.size(), Policies.size());

  // --- Shared mode: one audit per file, cache cleared once. -------------
  DecisionCache::global().clear();
  uint64_t SharedMissesBefore = DecideStats::global().CacheMisses;
  std::vector<AuditResult> Shared;
  Timer SharedClock;
  for (const BenchFile &F : Files)
    Shared.push_back(auditSource(F.Source, Policies, F.Opts));
  double SharedSeconds = SharedClock.seconds();
  uint64_t SharedMisses =
      DecideStats::global().CacheMisses - SharedMissesBefore;

  // --- Separate mode: per policy, a cold independent sweep. -------------
  uint64_t SeparateMisses = 0;
  double SeparateSeconds = 0.0;
  // [policy][file]
  std::vector<std::vector<AnalysisResult>> Separate(Policies.size());
  for (size_t P = 0; P != Policies.size(); ++P) {
    DecisionCache::global().clear();
    uint64_t MissesBefore = DecideStats::global().CacheMisses;
    Timer PolicyClock;
    for (const BenchFile &F : Files)
      Separate[P].push_back(
          analyzeSource(F.Source, Policies[P]->Attack, F.Opts));
    SeparateSeconds += PolicyClock.seconds();
    SeparateMisses += DecideStats::global().CacheMisses - MissesBefore;
  }

  // --- Gate 1: per-file, per-policy verdict equality. -------------------
  bool VerdictsMatch = true;
  unsigned VulnerableFiles = 0;
  for (size_t I = 0; I != Files.size(); ++I) {
    const AuditResult &A = Shared[I];
    if (!A.ParseOk) {
      std::fprintf(stderr, "parse error in %s: %s\n",
                   Files[I].Label.c_str(), A.ParseError.c_str());
      return 1;
    }
    VulnerableFiles += A.anyVulnerable();
    for (size_t P = 0; P != Policies.size(); ++P) {
      const PolicyFinding &F = A.Findings[P];
      const AnalysisResult &R = Separate[P][I];
      bool Same = F.vulnerable() == R.vulnerable() &&
                  F.SinksFound == R.SinksFound &&
                  F.SinksProvenSafe == R.SinksProvenSafe &&
                  F.SinkPaths == R.SinkPaths &&
                  F.VulnerablePaths == R.VulnerablePaths &&
                  F.SinkLine == R.SinkLine;
      // On the SQL-only Figure 11 corpus the shared walk interns exactly
      // the variables a standalone run does, so the whole report — the
      // constraint count and the exploit witnesses included — must be
      // bit-identical. (Multi-class showcase files may intern extra,
      // verdict-neutral input variables; see runSymExecAll.)
      if (Files[I].Fig11)
        Same = Same && F.NumConstraints == R.NumConstraints &&
               F.ExploitInputs == R.ExploitInputs &&
               F.SliceLines == R.SliceLines;
      if (!Same) {
        std::fprintf(stderr, "verdict mismatch: %s policy %s\n",
                     Files[I].Label.c_str(), Policies[P]->Id.c_str());
        VerdictsMatch = false;
      }
    }
  }

  // --- Gate 2 + 3: the shared pass is cheaper on both axes. -------------
  bool WallCheaper = SharedSeconds < SeparateSeconds;
  bool MissesCheaper = SharedMisses < SeparateMisses;

  std::printf("%-12s %14s %16s\n", "mode", "wall seconds", "decide misses");
  std::printf("%-12s %14.3f %16llu\n", "shared", SharedSeconds,
              static_cast<unsigned long long>(SharedMisses));
  std::printf("%-12s %14.3f %16llu\n", "separate", SeparateSeconds,
              static_cast<unsigned long long>(SeparateMisses));
  std::printf("\nfiles: %zu (%u with some vulnerable policy)\n",
              Files.size(), VulnerableFiles);
  std::printf("verdicts %s across %zu policies\n",
              VerdictsMatch ? "MATCH" : "DO NOT MATCH", Policies.size());
  std::printf("shared pass wall time %s\n",
              WallCheaper ? "CHEAPER" : "NOT CHEAPER");
  std::printf("shared pass cache misses %s\n",
              MissesCheaper ? "FEWER" : "NOT FEWER");

  benchjson::BenchRun &Run = Report.addRun("audit_vs_separate");
  Run.RealSeconds = SharedSeconds + SeparateSeconds;
  Run.Counters = {
      {"files", double(Files.size())},
      {"policies", double(Policies.size())},
      {"vulnerable_files", double(VulnerableFiles)},
      {"shared_seconds", SharedSeconds},
      {"separate_seconds", SeparateSeconds},
      {"shared_decide_misses", double(SharedMisses)},
      {"separate_decide_misses", double(SeparateMisses)},
      {"verdicts_match", VerdictsMatch ? 1.0 : 0.0},
      {"wall_cheaper", WallCheaper ? 1.0 : 0.0},
      {"misses_cheaper", MissesCheaper ? 1.0 : 0.0},
  };
  Report.write();
  return VerdictsMatch && WallCheaper && MissesCheaper ? 0 : 1;
}
