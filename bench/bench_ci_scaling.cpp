//===- bench_ci_scaling.cpp - Section 3.5 complexity claims (CI) ----------===//
//
// Experiment E6a (DESIGN.md): the paper's cost model for one
// concat_intersect call (Section 3.5):
//
//   * constructing the intersection visits |M3| (|M1| + |M2|) = O(Q^2)
//     states;
//   * the number of disjunctive solutions is bounded by |M3| = O(Q);
//   * enumerating all solutions eagerly visits O(Q^3) states.
//
// The family below scales all three machines with Q and separates the
// "first solution" cost from the "all solutions" cost, reproducing the
// paper's remark that the first solution can be produced without
// enumerating the others. Counters report states visited per the paper's
// metric; check the ~Q^2 growth of ProductStates and ~Q^3 growth of
// TotalStates under --benchmark_counters_tabular=true.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "automata/NfaOps.h"
#include "automata/OpStats.h"
#include "regex/RegexCompiler.h"
#include "solver/ConcatIntersect.h"

#include <benchmark/benchmark.h>

using namespace dprle;

namespace {

/// a^{0..N} as a deterministic chain.
Nfa boundedAs(unsigned N) {
  Nfa M;
  StateId Prev = M.start();
  M.setAccepting(Prev);
  for (unsigned I = 0; I != N; ++I) {
    StateId Next = M.addState();
    M.addTransition(Prev, CharSet::singleton('a'), Next);
    M.setAccepting(Next);
    Prev = Next;
  }
  return M;
}

void BM_CiAllSolutions(benchmark::State &State) {
  const unsigned Q = State.range(0);
  Nfa C1 = boundedAs(Q);
  Nfa C2 = boundedAs(Q);
  Nfa C3 = boundedAs(2 * Q);
  uint64_t Solutions = 0;
  OpStats::global().reset();
  for (auto _ : State) {
    auto Result = concatIntersect(C1, C2, C3);
    Solutions = Result.size();
    benchmark::DoNotOptimize(Result);
  }
  State.counters["Q"] = Q;
  State.counters["Solutions"] = Solutions;
  State.counters["ProductStates"] = benchmark::Counter(
      OpStats::global().ProductStatesVisited / State.iterations());
  State.counters["TotalStates"] = benchmark::Counter(
      OpStats::global().totalStatesVisited() / State.iterations());
}

void BM_CiFirstSolution(benchmark::State &State) {
  const unsigned Q = State.range(0);
  Nfa C1 = boundedAs(Q);
  Nfa C2 = boundedAs(Q);
  Nfa C3 = boundedAs(2 * Q);
  OpStats::global().reset();
  for (auto _ : State) {
    auto Result = concatIntersect(C1, C2, C3, /*MaxSolutions=*/1);
    benchmark::DoNotOptimize(Result);
  }
  State.counters["Q"] = Q;
  State.counters["TotalStates"] = benchmark::Counter(
      OpStats::global().totalStatesVisited() / State.iterations());
}

/// Construction only (lines 6-8 of paper Figure 3): the O(Q^2) part.
void BM_CiMachineConstruction(benchmark::State &State) {
  const unsigned Q = State.range(0);
  Nfa C1 = boundedAs(Q).withSingleAccepting();
  Nfa C2 = boundedAs(Q).withSingleAccepting();
  Nfa C3 = boundedAs(2 * Q).withSingleAccepting();
  OpStats::global().reset();
  for (auto _ : State) {
    Nfa M4 = concat(C1, C2, 0);
    Nfa M5 = intersect(M4, C3).trimmed();
    benchmark::DoNotOptimize(M5);
  }
  State.counters["Q"] = Q;
  State.counters["ProductStates"] = benchmark::Counter(
      OpStats::global().ProductStatesVisited / State.iterations());
}

} // namespace

BENCHMARK(BM_CiMachineConstruction)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Arg(128)->Arg(256);
BENCHMARK(BM_CiFirstSolution)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);
BENCHMARK(BM_CiAllSolutions)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

DPRLE_BENCH_MAIN("ci_scaling")
