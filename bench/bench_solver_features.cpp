//===- bench_solver_features.cpp - Cost of the solver's feature knobs -----===//
//
// Ablation of this implementation's own options (complementing E9's
// paper-suggested minimization ablation): what do maximality widening,
// solution dedup, full enumeration, and candidate verification cost on
// representative workloads?
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "regex/RegexCompiler.h"
#include "solver/Solver.h"

#include <benchmark/benchmark.h>

using namespace dprle;

namespace {

/// The motivating-example system (paper Section 2).
Problem motivatingProblem() {
  Problem P;
  VarId V = P.addVariable("posted_newsid");
  P.addConstraint({P.var(V)}, searchLanguage("[\\d]+$"));
  P.addConstraint({P.constant(Nfa::literal("nid_")), P.var(V)},
                  searchLanguage("'"));
  return P;
}

/// A disjunction-heavy system: two unconstrained variables split a
/// bounded language many ways.
Problem disjunctiveProblem() {
  Problem P;
  VarId A = P.addVariable("a");
  VarId B = P.addVariable("b");
  P.addConstraint({P.var(A), P.var(B)}, regexLanguage("x{0,12}"));
  return P;
}

void run(benchmark::State &State, const Problem &P, SolverOptions Opts) {
  Solver S(Opts);
  uint64_t Solutions = 0;
  for (auto _ : State) {
    SolveResult R = S.solve(P);
    Solutions = R.Assignments.size();
    benchmark::DoNotOptimize(R);
  }
  State.counters["Solutions"] = Solutions;
}

void BM_Motivating_Default(benchmark::State &State) {
  run(State, motivatingProblem(), SolverOptions());
}

void BM_Motivating_NoMaximize(benchmark::State &State) {
  SolverOptions Opts;
  Opts.MaximizeSolutions = false;
  run(State, motivatingProblem(), Opts);
}

void BM_Motivating_FirstOnly(benchmark::State &State) {
  SolverOptions Opts;
  Opts.MaxSolutions = 1;
  Opts.MaximizeSolutions = false;
  run(State, motivatingProblem(), Opts);
}

void BM_Disjunctive_AllMaximized(benchmark::State &State) {
  run(State, disjunctiveProblem(), SolverOptions());
}

void BM_Disjunctive_AllRaw(benchmark::State &State) {
  SolverOptions Opts;
  Opts.MaximizeSolutions = false;
  Opts.DedupSolutions = false;
  run(State, disjunctiveProblem(), Opts);
}

void BM_Disjunctive_FirstOnly(benchmark::State &State) {
  SolverOptions Opts;
  Opts.MaxSolutions = 1;
  Opts.MaximizeSolutions = false;
  run(State, disjunctiveProblem(), Opts);
}

} // namespace

BENCHMARK(BM_Motivating_Default);
BENCHMARK(BM_Motivating_NoMaximize);
BENCHMARK(BM_Motivating_FirstOnly);
BENCHMARK(BM_Disjunctive_AllMaximized);
BENCHMARK(BM_Disjunctive_AllRaw);
BENCHMARK(BM_Disjunctive_FirstOnly);

DPRLE_BENCH_MAIN("solver_features")
