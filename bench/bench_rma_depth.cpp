//===- bench_rma_depth.cpp - Section 3.5 complexity claims (general RMA) --===//
//
// Experiment E6b (DESIGN.md): the paper's analysis of *inductive*
// concat_intersect application. For the two-call system
//
//   v1 <= c1, v2 <= c2, v3 <= c3, v1.v2 <= c4, v1.v2.v3 <= c5
//
// the paper derives O(Q^3) states visited to produce the first solution
// and O(Q^5) to enumerate all solutions, and notes that the total cost
// grows exponentially with the number of inductive calls. The benchmarks
// sweep machine size Q at fixed depth 2 (the paper's example) and sweep
// the concatenation depth at fixed Q.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "automata/OpStats.h"
#include "regex/RegexCompiler.h"
#include "solver/Solver.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace dprle;

namespace {

/// a^{0..N} as a deterministic chain.
Nfa boundedAs(unsigned N) {
  Nfa M;
  StateId Prev = M.start();
  M.setAccepting(Prev);
  for (unsigned I = 0; I != N; ++I) {
    StateId Next = M.addState();
    M.addTransition(Prev, CharSet::singleton('a'), Next);
    M.setAccepting(Next);
    Prev = Next;
  }
  return M;
}

/// Builds the paper's Section 3.5 two-call system scaled by Q, or a
/// deeper variant with `Depth` nested prefixes:
///   v1..vD with vi <= a{0..Q}, and for each prefix length k >= 2:
///   v1...vk <= a{0..kQ}.
Problem depthSystem(unsigned Q, unsigned Depth) {
  Problem P;
  std::vector<VarId> Vars;
  for (unsigned I = 0; I != Depth; ++I) {
    VarId V = P.addVariable("v" + std::to_string(I + 1));
    Vars.push_back(V);
    P.addConstraint({P.var(V)}, boundedAs(Q));
  }
  for (unsigned K = 2; K <= Depth; ++K) {
    std::vector<Term> Lhs;
    for (unsigned I = 0; I != K; ++I)
      Lhs.push_back(P.var(Vars[I]));
    P.addConstraint(std::move(Lhs), boundedAs(K * Q));
  }
  return P;
}

void runSystem(benchmark::State &State, unsigned Q, unsigned Depth,
               size_t MaxSolutions) {
  Problem P = depthSystem(Q, Depth);
  SolverOptions Opts;
  Opts.MaxSolutions = MaxSolutions;
  // Keep the measurements about the core algorithm, not the widening.
  Opts.MaximizeSolutions = false;
  Solver S(Opts);
  OpStats::global().reset();
  uint64_t Solutions = 0;
  for (auto _ : State) {
    SolveResult R = S.solve(P);
    Solutions = R.Assignments.size();
    benchmark::DoNotOptimize(R);
  }
  State.counters["Q"] = Q;
  State.counters["Depth"] = Depth;
  State.counters["Solutions"] = Solutions;
  State.counters["TotalStates"] = benchmark::Counter(
      OpStats::global().totalStatesVisited() / State.iterations());
}

void BM_TwoCallFirstSolution(benchmark::State &State) {
  runSystem(State, State.range(0), /*Depth=*/3, /*MaxSolutions=*/1);
}

void BM_TwoCallAllSolutions(benchmark::State &State) {
  runSystem(State, State.range(0), /*Depth=*/3, SIZE_MAX);
}

void BM_DepthSweepFirstSolution(benchmark::State &State) {
  runSystem(State, /*Q=*/6, State.range(0), /*MaxSolutions=*/1);
}

void BM_DepthSweepAllSolutions(benchmark::State &State) {
  runSystem(State, /*Q=*/6, State.range(0), SIZE_MAX);
}

} // namespace

BENCHMARK(BM_TwoCallFirstSolution)->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_TwoCallAllSolutions)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_DepthSweepFirstSolution)->Arg(2)->Arg(3)->Arg(4)->Arg(5);
BENCHMARK(BM_DepthSweepAllSolutions)->Arg(2)->Arg(3);

DPRLE_BENCH_MAIN("rma_depth")
