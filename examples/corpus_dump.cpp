//===- corpus_dump.cpp - Write the synthetic corpus to disk ---------------===//
//
// Materializes the Figure 11 corpus (eve / utopia / warp) as .php files
// so the generated programs can be inspected, diffed, or analyzed with
// sqli_exploit individually.
//
// Usage:  ./build/examples/corpus_dump <output-directory>
//
//===----------------------------------------------------------------------===//

#include "miniphp/Corpus.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace dprle::miniphp;

int main(int Argc, char **Argv) {
  if (Argc != 2) {
    std::fprintf(stderr, "usage: corpus_dump <output-directory>\n");
    return 2;
  }
  std::filesystem::path Root(Argv[1]);
  std::error_code Ec;
  std::filesystem::create_directories(Root, Ec);
  if (Ec) {
    std::fprintf(stderr, "error: cannot create %s: %s\n", Argv[1],
                 Ec.message().c_str());
    return 1;
  }

  unsigned Files = 0, Lines = 0;
  for (const Suite &S : figure11Suites()) {
    std::filesystem::path Dir = Root / (S.Name + "-" + S.Version);
    std::filesystem::create_directories(Dir, Ec);
    if (Ec) {
      std::fprintf(stderr, "error: cannot create %s\n", Dir.c_str());
      return 1;
    }
    for (const SuiteFile &F : S.Files) {
      std::ofstream Out(Dir / F.Name);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     (Dir / F.Name).c_str());
        return 1;
      }
      Out << F.Source;
      ++Files;
    }
    Lines += S.totalLines();
    std::printf("%-8s %-6s: %zu files under %s\n", S.Name.c_str(),
                S.Version.c_str(), S.Files.size(), Dir.c_str());
  }
  std::printf("wrote %u files, %u total lines\n", Files, Lines);
  return 0;
}
