//===- cmd_injection_audit.cpp - Command injection audit ------------------===//
//
// Audits the same mini-PHP page twice with the policy registry's command
// injection policy (miniphp/Policy.h): once as written — user input
// concatenated straight into exec() — and once after the fix, routing
// the input through escapeshellarg(). The first audit produces a
// concrete shell-metacharacter exploit; the second proves the sink safe
// because the sanitizer's transformer model emits only single-quoted,
// quote-free strings, which cannot intersect the attack language.
//
// Build & run:  ./build/examples/cmd_injection_audit
//
//===----------------------------------------------------------------------===//

#include "miniphp/Analysis.h"
#include "miniphp/Policy.h"

#include <cstdio>
#include <vector>

using namespace dprle;
using namespace dprle::miniphp;

namespace {

// An admin page that shells out to ping with a user-supplied host. The
// preg_match check requires a hostname-looking prefix but is unanchored
// at the end, so "host; rm -rf /" style payloads pass the filter.
const char *VulnerableSource = R"php(<?php
$host = $_GET['host'];
if (!preg_match('/^[a-z0-9.-]+/', $host)) {
  unp_msgBox('Bad host.');
  exit;
}
exec("ping -c 1 " . $host);
?>)php";

// The fix: escapeshellarg() wraps the argument in single quotes and the
// model guarantees no quote or shell metacharacter escapes them.
const char *FixedSource = R"php(<?php
$host = $_GET['host'];
$safe = escapeshellarg($host);
exec("ping -c 1 " . $safe);
?>)php";

void report(const char *Label, const AuditResult &Audit) {
  std::printf("%s\n", Label);
  for (const PolicyFinding &F : Audit.Findings) {
    std::printf("  %-5s %-10s (sinks: %u, proven safe: %u)\n",
                F.PolicyId.c_str(),
                F.vulnerable() ? "VULNERABLE"
                : F.noSinks()  ? "no sinks"
                               : "safe",
                F.SinksFound, F.SinksProvenSafe);
    if (!F.vulnerable())
      continue;
    std::printf("        sink at line %u; exploit:\n", F.SinkLine);
    for (const auto &[Key, Value] : F.ExploitInputs)
      std::printf("          %s = \"%s\"\n", Key.c_str(), Value.c_str());
  }
}

} // namespace

int main() {
  const PolicyRegistry &Registry = PolicyRegistry::global();
  std::vector<const Policy *> Policies;
  for (const Policy &P : Registry.policies())
    Policies.push_back(&P);

  AuditResult Before = auditSource(VulnerableSource, Policies);
  if (!Before.ParseOk) {
    std::fprintf(stderr, "parse error: %s\n", Before.ParseError.c_str());
    return 1;
  }
  report("before the fix (raw exec of user input):", Before);
  if (!Before.anyVulnerable()) {
    std::fprintf(stderr, "expected a command injection finding\n");
    return 1;
  }

  AuditResult After = auditSource(FixedSource, Policies);
  if (!After.ParseOk) {
    std::fprintf(stderr, "parse error: %s\n", After.ParseError.c_str());
    return 1;
  }
  report("after the fix (escapeshellarg):", After);
  if (After.anyVulnerable()) {
    std::fprintf(stderr, "escapeshellarg should have proven the sink safe\n");
    return 1;
  }
  std::printf("escapeshellarg closes the hole: the sanitized language\n"
              "contains no unquoted shell metacharacter, so the subset\n"
              "check against the attack NFA is unsatisfiable.\n");
  return 0;
}
