//===- constraint_cli.cpp - Stand-alone constraint solver -----------------===//
//
// The "stand-alone utility in the style of a theorem prover or SAT
// solver" the paper describes: reads an RMA constraint file, solves it,
// and prints the satisfying assignments.
//
// Usage:
//   ./build/examples/constraint_cli examples/motivating.rma
//   ./build/examples/constraint_cli --first file.rma   (first solution)
//   echo "var v; v <= /ab*/;" | ./build/examples/constraint_cli -
//
//===----------------------------------------------------------------------===//

#include "solver/ConstraintParser.h"
#include "solver/Solver.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace dprle;

int main(int Argc, char **Argv) {
  SolverOptions Opts;
  const char *Path = nullptr;
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--first") == 0)
      Opts.MaxSolutions = 1;
    else
      Path = Argv[I];
  }
  if (!Path) {
    std::fprintf(stderr,
                 "usage: constraint_cli [--first] <file.rma | ->\n");
    return 2;
  }

  std::string Text;
  if (std::strcmp(Path, "-") == 0) {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    Text = Buffer.str();
  } else {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Path);
      return 2;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Text = Buffer.str();
  }

  ConstraintParseResult Parsed = parseConstraintText(Text);
  if (!Parsed.Ok) {
    std::fprintf(stderr, "%s:%zu: error: %s\n", Path, Parsed.ErrorLine,
                 Parsed.Error.c_str());
    return 2;
  }

  SolveResult R = Solver(Opts).solve(Parsed.Instance);
  if (!R.Satisfiable) {
    std::printf("unsat\n");
    return 1;
  }
  std::printf("sat (%zu assignment%s)\n", R.Assignments.size(),
              R.Assignments.size() == 1 ? "" : "s");
  const Problem &P = Parsed.Instance;
  for (size_t I = 0; I != R.Assignments.size(); ++I) {
    std::printf("assignment %zu:\n", I + 1);
    for (VarId V = 0; V != P.numVariables(); ++V) {
      const Assignment &A = R.Assignments[I];
      auto Witness = A.witness(V);
      std::printf("  %-16s /%s/   e.g. \"%s\"\n",
                  P.variableName(V).c_str(), A.regexFor(V).c_str(),
                  Witness ? Witness->c_str() : "<empty>");
    }
  }
  std::printf("stats: %llu states visited, %.4fs\n",
              (unsigned long long)R.Stats.StatesVisited,
              R.Stats.SolveSeconds);
  return 0;
}
