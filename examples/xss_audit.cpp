//===- xss_audit.cpp - Cross-site scripting audit ------------------------===//
//
// The paper (Section 2) notes the decision procedure "is more widely
// applicable (e.g., to cross-site scripting or XML generation)". This
// example audits a mini-PHP page that echoes user input into HTML after
// an incomplete sanitization check, and generates a concrete XSS payload
// that survives the filter.
//
// Build & run:  ./build/examples/xss_audit
//
//===----------------------------------------------------------------------===//

#include "miniphp/Analysis.h"
#include "miniphp/Policy.h"

#include <cstdio>
#include <vector>

using namespace dprle;
using namespace dprle::miniphp;

namespace {

// The filter strips nothing; it only *checks* that the comment starts
// with a word character — but forgot to anchor the whole string, so a
// <script> tag later in the comment passes.
const char *PageSource = R"php(<?php
$comment = $_POST['comment'];
if (!preg_match('/^\w/', $comment)) {
  unp_msgBox('Comment must start with a letter.');
  exit;
}
$html = "<div class=comment>" . $comment . "</div>";
echo $html;
?>)php";

} // namespace

int main() {
  // Policies come from the registry — the same table `dprle audit` and
  // the parser's sink classification use (miniphp/Policy.h).
  const PolicyRegistry &Registry = PolicyRegistry::global();
  const Policy *Xss = Registry.byId("xss");
  AnalysisResult R = analyzeSource(PageSource, Xss->Attack);
  if (!R.ParseOk) {
    std::fprintf(stderr, "parse error: %s\n", R.ParseError.c_str());
    return 1;
  }
  std::printf("sink paths: %u\n", R.SinkPaths);
  if (!R.vulnerable()) {
    std::printf("result: NOT vulnerable to XSS\n");
    return 0;
  }
  std::printf("result: XSS at line %u\n", R.SinkLine);
  for (const auto &[Key, Value] : R.ExploitInputs)
    std::printf("  %s = \"%s\"\n", Key.c_str(), Value.c_str());
  std::printf("path slice:");
  for (unsigned Line : R.SliceLines)
    std::printf(" %u", Line);
  std::printf("\n");

  // The same page is NOT SQL-injectable: there is no query() sink. One
  // auditSource call checks every registered policy over a single parse,
  // taint pass, and symbolic-execution walk.
  std::vector<const Policy *> All;
  for (const Policy &P : Registry.policies())
    All.push_back(&P);
  AuditResult Audit = auditSource(PageSource, All);
  std::printf("full audit of the same page:\n");
  for (const PolicyFinding &F : Audit.Findings)
    std::printf("  %-5s %s\n", F.PolicyId.c_str(),
                F.vulnerable() ? "VULNERABLE"
                : F.noSinks()  ? "no sinks"
                               : "safe");
  return 0;
}
