//===- quickstart.cpp - First steps with the dprle solver -----------------===//
//
// Builds the paper's motivating constraint system (Section 2) through the
// public API and prints the satisfying assignment, its regex rendering,
// and a concrete exploit witness.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "regex/RegexCompiler.h"
#include "solver/Solver.h"

#include <cstdio>

using namespace dprle;

int main() {
  // The PHP fragment of paper Figure 1 filters a user input with
  // /[\d]+$/ (note the missing '^') and then concatenates it into an SQL
  // query after "nid_". An injection exists iff some accepted input can
  // push a single quote into the query.
  Problem P;
  VarId Input = P.addVariable("posted_newsid");

  // Constraint 1: the input passes the (faulty) filter.
  P.addConstraint({P.var(Input)}, searchLanguage("[\\d]+$"), "filter");

  // Constraint 2: "nid_" . input reaches the sink with a quote in it.
  P.addConstraint({P.constant(Nfa::literal("nid_"), "prefix"),
                   P.var(Input)},
                  searchLanguage("'"), "attack");

  SolveResult Result = Solver().solve(P);
  if (!Result.Satisfiable) {
    std::printf("no assignments found: the code is not vulnerable\n");
    return 0;
  }

  std::printf("found %zu satisfying assignment(s)\n",
              Result.Assignments.size());
  for (size_t I = 0; I != Result.Assignments.size(); ++I) {
    const Assignment &A = Result.Assignments[I];
    std::printf("assignment %zu:\n", I + 1);
    std::printf("  %s  matches  /%s/\n", P.variableName(Input).c_str(),
                A.regexFor(Input).c_str());
    if (auto Witness = A.witness(Input))
      std::printf("  example exploit input: \"%s\"\n", Witness->c_str());
  }
  std::printf("solver: %llu constraints, %llu NFA states visited, %.4fs\n",
              (unsigned long long)Result.Stats.NumConstraints,
              (unsigned long long)Result.Stats.StatesVisited,
              Result.Stats.SolveSeconds);
  return 0;
}
