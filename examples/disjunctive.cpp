//===- disjunctive.cpp - Disjunctive solutions walkthrough ----------------===//
//
// Reproduces the worked examples of paper Sections 3.1.1 and 3.4.4: RMA
// instances with one, two, and four disjunctive maximal solutions,
// including the mutually dependent concatenations of Figure 9.
//
// Build & run:  ./build/examples/disjunctive
//
//===----------------------------------------------------------------------===//

#include "regex/RegexCompiler.h"
#include "solver/Solver.h"

#include <cstdio>

using namespace dprle;

namespace {

void report(const Problem &P, const SolveResult &R) {
  if (!R.Satisfiable) {
    std::printf("  no assignments found\n\n");
    return;
  }
  for (size_t I = 0; I != R.Assignments.size(); ++I) {
    std::printf("  A%zu = [", I + 1);
    for (VarId V = 0; V != P.numVariables(); ++V) {
      if (V)
        std::printf(", ");
      std::printf("%s -> /%s/", P.variableName(V).c_str(),
                  R.Assignments[I].regexFor(V).c_str());
    }
    std::printf("]\n");
  }
  std::printf("\n");
}

} // namespace

int main() {
  // --- Section 3.1.1, first example: a unique solution. -----------------
  std::printf("v1 <= (xx)+y,  v1 <= x*y   (paper Section 3.1.1)\n");
  {
    Problem P;
    VarId V1 = P.addVariable("v1");
    P.addConstraint({P.var(V1)}, regexLanguage("(xx)+y"));
    P.addConstraint({P.var(V1)}, regexLanguage("x*y"));
    report(P, Solver().solve(P));
  }

  // --- Section 3.1.1, second example: two disjunctive solutions. --------
  std::printf("v1 <= x(yy)+, v2 <= (yy)*z, v1.v2 <= xyyz|xyyyyz\n");
  {
    Problem P;
    VarId V1 = P.addVariable("v1");
    VarId V2 = P.addVariable("v2");
    P.addConstraint({P.var(V1)}, regexLanguage("x(yy)+"));
    P.addConstraint({P.var(V2)}, regexLanguage("(yy)*z"));
    P.addConstraint({P.var(V1), P.var(V2)},
                    regexLanguage("xyyz|xyyyyz"));
    report(P, Solver().solve(P));
  }

  // --- Section 3.4.4 / Figure 9: mutually dependent concatenations. -----
  std::printf("va.vb <= op{5}q*, vb.vc <= p*q{4}r   (paper Figure 9)\n");
  {
    Problem P;
    VarId Va = P.addVariable("va");
    VarId Vb = P.addVariable("vb");
    VarId Vc = P.addVariable("vc");
    P.addConstraint({P.var(Va)}, regexLanguage("o(pp)+"));
    P.addConstraint({P.var(Vb)}, regexLanguage("p*(qq)+"));
    P.addConstraint({P.var(Vc)}, regexLanguage("q*r"));
    P.addConstraint({P.var(Va), P.var(Vb)}, regexLanguage("op{5}q*"));
    P.addConstraint({P.var(Vb), P.var(Vc)}, regexLanguage("p*q{4}r"));
    SolveResult R = Solver().solve(P);
    report(P, R);
    std::printf("  (%llu combinations tried; the paper lists two of these"
                " assignments)\n",
                (unsigned long long)R.Stats.CombinationsTried);
  }
  return 0;
}
