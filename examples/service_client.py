#!/usr/bin/env python3
"""Minimal NDJSON client for `dprle serve` (docs/SERVICE.md).

Spawns the service as a subprocess, submits a batch of requests, and
correlates responses by id (the service answers in *completion* order,
so responses can arrive out of request order at --jobs > 1).

Standard library only. Usage:

    python3 examples/service_client.py [path/to/dprle] [--jobs=N]

The demo batch exercises each method: ping, a satisfiable solve (the
paper's Section 2 motivating example), an unsatisfiable solve, a decide
query, a deliberately malformed request (structured error, not a crash),
and shutdown.
"""

import json
import subprocess
import sys


MOTIVATING = (
    "var v1;"
    "let attack := search(/'/);"
    "v1 <= search(/[0-9]+$/);"
    '"nid_" . v1 <= attack;'
)


def demo_requests():
    """The request batch: (id, method, params) triples."""
    return [
        ("ping-1", "ping", {}),
        ("solve-sat", "solve", {"constraints": MOTIVATING,
                                "max_solutions": 1}),
        ("solve-unsat", "solve", {"constraints":
                                  "var v; v <= /a/; v <= /b/;"}),
        ("solve-slow", "solve", {"constraints": "var v; v <= /a*b*c*/;",
                                 "deadline_ms": 10000}),
        ("stats-1", "stats", {}),
    ]


def main():
    binary = "./build/tools/dprle"
    jobs = "--jobs=2"
    for arg in sys.argv[1:]:
        if arg.startswith("--jobs="):
            jobs = arg
        else:
            binary = arg

    proc = subprocess.Popen(
        [binary, "serve", jobs],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
    )

    requests = demo_requests()
    lines = [json.dumps({"id": rid, "method": method, "params": params})
             for rid, method, params in requests]
    # One malformed line: the service answers it with a structured
    # parse_error response (id null) instead of dying.
    lines.append("this is not json")
    lines.append(json.dumps({"id": "bye", "method": "shutdown"}))
    out, _ = proc.communicate("\n".join(lines) + "\n")

    by_id = {}
    unattributed = []
    for line in out.splitlines():
        if not line.strip():
            continue
        resp = json.loads(line)
        if resp.get("id") is None:
            unattributed.append(resp)
        else:
            by_id[resp["id"]] = resp

    for rid, method, _ in requests:
        resp = by_id.get(rid)
        if resp is None:
            print(f"{rid}: NO RESPONSE")
            continue
        if resp["ok"]:
            result = resp["result"]
            if method == "solve":
                verdict = "sat" if result["satisfiable"] else "unsat"
                witness = ""
                if result["assignments"]:
                    first = result["assignments"][0]
                    witness = " " + ", ".join(
                        f"{var}={entry.get('witness')!r}"
                        for var, entry in sorted(first.items()))
                print(f"{rid}: {verdict}{witness}")
            elif method == "stats":
                cache = result["decision_cache"]
                print(f"{rid}: jobs={result['jobs']} "
                      f"cache={cache['machines']} machines / "
                      f"{cache['answers']} answers")
            else:
                print(f"{rid}: ok")
        else:
            err = resp["error"]
            print(f"{rid}: error {err['code']}: {err['message']}")

    for resp in unattributed:
        err = resp.get("error", {})
        print(f"(id null): error {err.get('code')}: {err.get('message')}")

    shutdown = by_id.get("bye")
    print("shutdown acknowledged" if shutdown and shutdown["ok"]
          else "shutdown NOT acknowledged")
    return proc.wait()


if __name__ == "__main__":
    sys.exit(main())
