#!/usr/bin/env python3
"""Minimal NDJSON client for `dprle serve` (docs/SERVICE.md).

Spawns the service as a subprocess, submits a batch of requests, and
correlates responses by id (the service answers in *completion* order,
so responses can arrive out of request order at --jobs > 1).

Demonstrates the robustness protocol (docs/ROBUSTNESS.md):

 * requests shed with `overloaded` are retried with exponential backoff
   plus jitter, honoring the server's retry_after_ms hint and marking
   each resend with a `retry` attempt counter;
 * a pathological solve carrying a small max_states budget is answered
   with `resource_exhausted` (a final verdict — retrying cannot help);
 * a malformed line gets a structured parse_error, not a dead server.

Standard library only. Usage:

    python3 examples/service_client.py [path/to/dprle] [--jobs=N]
"""

import json
import random
import subprocess
import sys
import time


MOTIVATING = (
    "var v1;"
    "let attack := search(/'/);"
    "v1 <= search(/[0-9]+$/);"
    '"nid_" . v1 <= attack;'
)

# Small operands whose intermediate machines explode: with a tight
# max_states budget the service answers `resource_exhausted` instead of
# grinding (see docs/ROBUSTNESS.md).
PATHOLOGICAL = "var v; var w; v . w <= /(a|b)*a(a|b){10}/;"

MAX_ATTEMPTS = 5
BASE_BACKOFF_S = 0.05


def demo_requests():
    """The request batch: (id, method, params) triples."""
    return [
        ("ping-1", "ping", {}),
        ("solve-sat", "solve", {"constraints": MOTIVATING,
                                "max_solutions": 1}),
        ("solve-unsat", "solve", {"constraints":
                                  "var v; v <= /a/; v <= /b/;"}),
        ("solve-slow", "solve", {"constraints": "var v; v <= /a*b*c*/;",
                                 "deadline_ms": 10000}),
        ("solve-exhausted", "solve", {"constraints": PATHOLOGICAL,
                                      "max_states": 500}),
        ("stats-1", "stats", {}),
    ]


def backoff_seconds(attempt, retry_after_ms):
    """Exponential backoff with +/-25% jitter, floored at the server's
    retry_after_ms hint."""
    delay = BASE_BACKOFF_S * (2 ** (attempt - 1))
    delay = max(delay, retry_after_ms / 1000.0)
    return delay * random.uniform(0.75, 1.25)


def main():
    binary = "./build/tools/dprle"
    jobs = "--jobs=2"
    for arg in sys.argv[1:]:
        if arg.startswith("--jobs="):
            jobs = arg
        else:
            binary = arg

    proc = subprocess.Popen(
        [binary, "serve", jobs, "--max-queue=4"],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
    )

    def send(obj_or_line):
        line = (obj_or_line if isinstance(obj_or_line, str)
                else json.dumps(obj_or_line))
        proc.stdin.write(line + "\n")
        proc.stdin.flush()

    requests = demo_requests()
    params_by_id = {}
    for rid, method, params in requests:
        params_by_id[rid] = (method, params)
        send({"id": rid, "method": method, "params": params})
    # One malformed line: the service answers it with a structured
    # parse_error response (id null) instead of dying.
    send("this is not json")

    # Read until every request has a non-overloaded answer, retrying shed
    # requests with backoff. Responses for unknown/null ids (the parse
    # error) are reported as they come.
    attempts = {rid: 1 for rid in params_by_id}
    by_id = {}
    pending = set(params_by_id)
    while pending:
        line = proc.stdout.readline()
        if not line:
            break  # Server went away; report what we have.
        line = line.strip()
        if not line:
            continue
        resp = json.loads(line)
        rid = resp.get("id")
        if rid not in params_by_id:
            err = resp.get("error", {})
            print(f"(id {rid}): error {err.get('code')}: "
                  f"{err.get('message')}")
            continue
        error = resp.get("error") or {}
        if not resp["ok"] and error.get("code") == "overloaded":
            attempt = attempts[rid]
            if attempt >= MAX_ATTEMPTS:
                print(f"{rid}: gave up after {attempt} attempts")
                by_id[rid] = resp
                pending.discard(rid)
                continue
            delay = backoff_seconds(attempt, error.get("retry_after_ms", 0))
            print(f"{rid}: overloaded, retrying in {delay * 1000:.0f}ms "
                  f"(attempt {attempt + 1})")
            time.sleep(delay)
            attempts[rid] = attempt + 1
            method, params = params_by_id[rid]
            send({"id": rid, "method": method,
                  "params": {**params, "retry": attempt}})
            continue
        by_id[rid] = resp
        pending.discard(rid)

    send({"id": "bye", "method": "shutdown"})
    proc.stdin.close()
    shutdown_ok = False
    for line in proc.stdout:
        line = line.strip()
        if not line:
            continue
        resp = json.loads(line)
        if resp.get("id") == "bye":
            shutdown_ok = resp["ok"]

    for rid, method, _ in requests:
        resp = by_id.get(rid)
        if resp is None:
            print(f"{rid}: NO RESPONSE")
            continue
        if resp["ok"]:
            result = resp["result"]
            if method == "solve":
                verdict = "sat" if result["satisfiable"] else "unsat"
                witness = ""
                if result["assignments"]:
                    first = result["assignments"][0]
                    witness = " " + ", ".join(
                        f"{var}={entry.get('witness')!r}"
                        for var, entry in sorted(first.items()))
                print(f"{rid}: {verdict}{witness}")
            elif method == "stats":
                cache = result["decision_cache"]
                print(f"{rid}: jobs={result['jobs']} "
                      f"cache={cache['machines']} machines / "
                      f"{cache['answers']} answers "
                      f"queue_depth={result.get('queue_depth')}")
            else:
                print(f"{rid}: ok")
        else:
            err = resp["error"]
            extra = ""
            if err.get("dimension"):
                extra = f" (dimension: {err['dimension']})"
            print(f"{rid}: error {err['code']}: {err['message']}{extra}")

    print("shutdown acknowledged" if shutdown_ok
          else "shutdown NOT acknowledged")
    return proc.wait()


if __name__ == "__main__":
    sys.exit(main())
