#!/usr/bin/env python3
"""Minimal NDJSON client for `dprle serve` (docs/PROTOCOL.md).

Three interchangeable transports carry the same wire protocol:

 * subprocess (default): spawns the service and speaks over its
   stdin/stdout pipes;
 * --connect HOST:PORT: TCP, to a server started with --listen;
 * --unix PATH: Unix-domain socket, to a server started with
   --unix-socket.

Submits a batch of requests and correlates responses by id (the service
answers in *completion* order, so responses can arrive out of request
order at --jobs > 1 and always can over a socket).

Demonstrates the robustness protocol (docs/ROBUSTNESS.md):

 * requests shed with `overloaded` are retried with exponential backoff
   plus jitter, honoring the server's retry_after_ms hint and marking
   each resend with a `retry` attempt counter — the same code path
   recovers from per-connection sheds (--max-inflight) and from shard
   worker crashes behind a --shards router (docs/DEPLOYMENT.md);
 * a pathological solve carrying a small max_states budget is answered
   with `resource_exhausted` (a final verdict — retrying cannot help);
 * a malformed line gets a structured parse_error, not a dead server.

Standard library only. Usage:

    python3 examples/service_client.py [path/to/dprle] [--jobs=N]
    python3 examples/service_client.py --connect 127.0.0.1:8370
    python3 examples/service_client.py --unix /run/dprle.sock
"""

import json
import random
import socket
import subprocess
import sys
import time


MOTIVATING = (
    "var v1;"
    "let attack := search(/'/);"
    "v1 <= search(/[0-9]+$/);"
    '"nid_" . v1 <= attack;'
)

# Small operands whose intermediate machines explode: with a tight
# max_states budget the service answers `resource_exhausted` instead of
# grinding (see docs/ROBUSTNESS.md).
PATHOLOGICAL = "var v; var w; v . w <= /(a|b)*a(a|b){10}/;"

MAX_ATTEMPTS = 5
BASE_BACKOFF_S = 0.05


class SubprocessTransport:
    """Spawns `dprle serve` and speaks NDJSON over its pipes."""

    def __init__(self, binary, jobs):
        self.proc = subprocess.Popen(
            [binary, "serve", jobs, "--max-queue=4"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
        )

    def send_line(self, line):
        self.proc.stdin.write(line + "\n")
        self.proc.stdin.flush()

    def read_line(self):
        return self.proc.stdout.readline()

    def finish(self):
        """Half-closes the request side and drains remaining responses."""
        self.proc.stdin.close()
        for line in self.proc.stdout:
            yield line

    def wait(self):
        return self.proc.wait()


class SocketTransport:
    """Connects to a running server over TCP or a Unix-domain socket."""

    def __init__(self, address, timeout_s=30.0):
        if isinstance(address, tuple):
            self.sock = socket.create_connection(address, timeout=timeout_s)
        else:
            self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self.sock.settimeout(timeout_s)
            self.sock.connect(address)
        self.stream = self.sock.makefile("rw", encoding="utf-8",
                                         newline="\n")

    def send_line(self, line):
        self.stream.write(line + "\n")
        self.stream.flush()

    def read_line(self):
        try:
            return self.stream.readline()
        except (socket.timeout, OSError):
            return ""

    def finish(self):
        """Half-closes the request side and drains remaining responses."""
        try:
            self.sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        while True:
            line = self.read_line()
            if not line:
                break
            yield line
        self.stream.close()
        self.sock.close()

    def wait(self):
        return 0


def demo_requests():
    """The request batch: (id, method, params) triples."""
    return [
        ("ping-1", "ping", {}),
        ("solve-sat", "solve", {"constraints": MOTIVATING,
                                "max_solutions": 1}),
        ("solve-unsat", "solve", {"constraints":
                                  "var v; v <= /a/; v <= /b/;"}),
        ("solve-slow", "solve", {"constraints": "var v; v <= /a*b*c*/;",
                                 "deadline_ms": 10000}),
        ("solve-exhausted", "solve", {"constraints": PATHOLOGICAL,
                                      "max_states": 500}),
        ("stats-1", "stats", {}),
    ]


def backoff_seconds(attempt, retry_after_ms):
    """Exponential backoff with +/-25% jitter, floored at the server's
    retry_after_ms hint."""
    delay = BASE_BACKOFF_S * (2 ** (attempt - 1))
    delay = max(delay, retry_after_ms / 1000.0)
    return delay * random.uniform(0.75, 1.25)


def parse_transport(argv):
    binary = "./build/tools/dprle"
    jobs = "--jobs=2"
    connect = None
    unix = None
    it = iter(argv)
    for arg in it:
        if arg.startswith("--jobs="):
            jobs = arg
        elif arg == "--connect":
            connect = next(it, None)
        elif arg.startswith("--connect="):
            connect = arg.split("=", 1)[1]
        elif arg == "--unix":
            unix = next(it, None)
        elif arg.startswith("--unix="):
            unix = arg.split("=", 1)[1]
        else:
            binary = arg
    if connect:
        host, _, port = connect.rpartition(":")
        return SocketTransport((host or "127.0.0.1", int(port)))
    if unix:
        return SocketTransport(unix)
    return SubprocessTransport(binary, jobs)


def main():
    transport = parse_transport(sys.argv[1:])

    def send(obj_or_line):
        line = (obj_or_line if isinstance(obj_or_line, str)
                else json.dumps(obj_or_line))
        transport.send_line(line)

    requests = demo_requests()
    params_by_id = {}
    for rid, method, params in requests:
        params_by_id[rid] = (method, params)
        send({"id": rid, "method": method, "params": params})
    # One malformed line: the service answers it with a structured
    # parse_error response (id null) instead of dying.
    send("this is not json")

    # Read until every request has a non-overloaded answer, retrying shed
    # requests with backoff. Responses for unknown/null ids (the parse
    # error) are reported as they come.
    attempts = {rid: 1 for rid in params_by_id}
    by_id = {}
    pending = set(params_by_id)
    while pending:
        line = transport.read_line()
        if not line:
            break  # Server went away; report what we have.
        line = line.strip()
        if not line:
            continue
        resp = json.loads(line)
        rid = resp.get("id")
        if rid not in params_by_id:
            err = resp.get("error", {})
            print(f"(id {rid}): error {err.get('code')}: "
                  f"{err.get('message')}")
            continue
        error = resp.get("error") or {}
        if not resp["ok"] and error.get("code") == "overloaded":
            attempt = attempts[rid]
            if attempt >= MAX_ATTEMPTS:
                print(f"{rid}: gave up after {attempt} attempts")
                by_id[rid] = resp
                pending.discard(rid)
                continue
            delay = backoff_seconds(attempt, error.get("retry_after_ms", 0))
            print(f"{rid}: overloaded, retrying in {delay * 1000:.0f}ms "
                  f"(attempt {attempt + 1})")
            time.sleep(delay)
            attempts[rid] = attempt + 1
            method, params = params_by_id[rid]
            send({"id": rid, "method": method,
                  "params": {**params, "retry": attempt}})
            continue
        by_id[rid] = resp
        pending.discard(rid)

    send({"id": "bye", "method": "shutdown"})
    shutdown_ok = False
    for line in transport.finish():
        line = line.strip()
        if not line:
            continue
        resp = json.loads(line)
        if resp.get("id") == "bye":
            shutdown_ok = resp["ok"]

    for rid, method, _ in requests:
        resp = by_id.get(rid)
        if resp is None:
            print(f"{rid}: NO RESPONSE")
            continue
        if resp["ok"]:
            result = resp["result"]
            if method == "solve":
                verdict = "sat" if result["satisfiable"] else "unsat"
                witness = ""
                if result["assignments"]:
                    first = result["assignments"][0]
                    witness = " " + ", ".join(
                        f"{var}={entry.get('witness')!r}"
                        for var, entry in sorted(first.items()))
                print(f"{rid}: {verdict}{witness}")
            elif method == "stats":
                cache = result["decision_cache"]
                print(f"{rid}: jobs={result['jobs']} "
                      f"cache={cache['machines']} machines / "
                      f"{cache['answers']} answers "
                      f"queue_depth={result.get('queue_depth')}")
            else:
                print(f"{rid}: ok")
        else:
            err = resp["error"]
            extra = ""
            if err.get("dimension"):
                extra = f" (dimension: {err['dimension']})"
            print(f"{rid}: error {err['code']}: {err['message']}{extra}")

    print("shutdown acknowledged" if shutdown_ok
          else "shutdown NOT acknowledged")
    return transport.wait()


if __name__ == "__main__":
    sys.exit(main())
